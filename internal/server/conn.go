package server

import (
	"bufio"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"net"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/reduction"
	"repro/internal/trace"
	"repro/internal/wire"
)

// preambleTimeout bounds how long a fresh connection may sit silent
// before sending its magic, so dead or misdirected connections cannot
// hold sockets open forever.
const preambleTimeout = 10 * time.Second

// tlPool recycles per-job stage timelines. A timeline's lifetime is
// strictly handleSubmit → waiter goroutine → observe, so the goroutine
// that calls observe is the last holder and returns it here.
var tlPool = sync.Pool{New: func() any { return new(obs.Timeline) }}

// conn is one client connection: a read loop decoding submissions into
// the shared engine, one waiter goroutine per in-flight job, and a write
// loop serializing their responses. Responses leave in completion order,
// not submission order — the client matches them by job ID.
type conn struct {
	srv *Server
	nc  net.Conn
	id  uint64 // session-store owner key (client session ids are conn-scoped)

	writeCh   chan *wire.Buffer
	writeDone chan struct{}

	inflight atomic.Int64   // this connection's in-flight jobs
	jobWG    sync.WaitGroup // waiter goroutines still running

	// tenant is the admission identity this connection charges, bound by
	// the client's HELLO tenant field (default until one arrives). Only
	// the read loop touches it; waiter goroutines capture what they need
	// before spawning.
	tenant *tenantState

	draining atomic.Bool

	// Decode scratch, reused frame after frame (only the read loop
	// touches it; interning clones before anything escapes, and
	// OPEN_SESSION clones before handing off to its waiter).
	scratch      trace.Loop
	scratchOff   []int32
	scratchRefs  []int32
	scratchDelta []reduction.RefDelta
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:       s,
		nc:        nc,
		id:        s.connIDs.Add(1),
		tenant:    s.tenantList[0],
		writeCh:   make(chan *wire.Buffer, 64),
		writeDone: make(chan struct{}),
	}
}

// beginDrain stops the read loop at its next frame boundary: the flag
// tells it why, the expired deadline unblocks it. In-flight jobs keep
// running and their responses still flush.
func (c *conn) beginDrain() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Unix(1, 0))
}

// send hands one encoded response to the write loop, which frees it.
func (c *conn) send(buf *wire.Buffer) { c.writeCh <- buf }

func (c *conn) sendError(jobID uint64, msg string) {
	buf := wire.GetBuffer()
	buf.B = wire.AppendError(buf.B, jobID, msg)
	c.send(buf)
}

func (c *conn) sendBusy(jobID uint64, code wire.BusyCode) {
	c.srv.busy.Add(1)
	buf := wire.GetBuffer()
	buf.B = wire.AppendBusy(buf.B, jobID, code)
	c.send(buf)
}

// serve runs the connection to completion: preamble, hello, read loop,
// then the drain sequence (waiters finish, responses flush, socket
// closes). It owns the server's per-connection WaitGroup slot.
func (c *conn) serve() {
	defer c.srv.wg.Done()
	defer c.srv.removeConn(c)
	defer c.nc.Close()

	c.nc.SetReadDeadline(time.Now().Add(preambleTimeout))
	if c.draining.Load() {
		// Shutdown raced the deadline above onto a pre-preamble socket;
		// re-expire it so an idle connection cannot stall the drain for
		// the full preamble timeout.
		c.nc.SetReadDeadline(time.Unix(1, 0))
	}
	br := bufio.NewReaderSize(c.nc, 64<<10)
	if _, err := wire.ReadPreamble(br); err != nil {
		return
	}
	c.nc.SetReadDeadline(time.Time{})
	if c.draining.Load() {
		// Shutdown raced the deadline reset; re-arm it so the read loop
		// still exits immediately.
		c.nc.SetReadDeadline(time.Unix(1, 0))
	}

	go c.writeLoop()
	hello := wire.GetBuffer()
	hello.B = wire.AppendHello(hello.B, wire.Hello{
		Version:     wire.ProtoVersion,
		Procs:       c.srv.disp.Procs(),
		MaxInflight: c.srv.cfg.MaxInflightPerConn,
		Flags:       c.srv.disp.HelloFlags(),
	})
	c.send(hello)

	r := wire.NewReader(br, c.srv.cfg.MaxFrameBytes)
	for {
		f, err := r.Next()
		if err != nil {
			// A framing error means the stream is unrecoverable: tell the
			// client why before closing. Clean EOF and the drain deadline
			// close silently.
			if errors.Is(err, wire.ErrCorrupt) || errors.Is(err, wire.ErrFrameTooLarge) {
				c.sendError(0, err.Error())
			}
			break
		}
		if f.Type == wire.FrameHello {
			// A client HELLO binds the connection to a tenant. It rides
			// job ID 0 (connection-scoped), so it must be recognized before
			// the violation check below. Unknown tenant names degrade to
			// the default tenant rather than failing the connection, so a
			// fleet can be configured incrementally.
			h, err := f.DecodeHello()
			if err != nil {
				c.sendError(0, err.Error())
				break
			}
			c.tenant = c.srv.tenantFor(h.Tenant)
			continue
		}
		if f.JobID == 0 {
			c.sendError(0, "protocol violation: job id 0 is connection-scoped")
			break
		}
		if f.Type == wire.FrameSubmit {
			c.handleSubmit(f)
			continue
		}
		if f.Type == wire.FrameStatsReq {
			c.handleStatsReq(f.JobID)
			continue
		}
		if f.Type == wire.FrameOpenSession {
			c.handleOpenSession(f)
			continue
		}
		if f.Type == wire.FrameDelta {
			c.handleDelta(f)
			continue
		}
		if f.Type == wire.FrameCloseSession {
			c.handleCloseSession(f)
			continue
		}
		c.sendError(0, fmt.Sprintf("protocol violation: unexpected %v frame", f.Type))
		break
	}

	// Drain: every accepted job resolves and its response is written
	// before the socket closes; then the connection's resident sessions
	// are torn down (their owner is gone, no delta can ever reach them).
	c.jobWG.Wait()
	c.srv.sessions.dropConn(c.id)
	close(c.writeCh)
	<-c.writeDone
}

// handleStatsReq answers one statistics request off the read loop: for
// a gateway dispatcher Stats() is remote fan-out, and pipelined SUBMITs
// behind the request must not wait on it. Responses are ID-keyed, so
// ordering is free; jobWG makes drain wait for the answer to flush.
// Stats requests draw on the same admission budgets as submissions —
// each holds a goroutine (and, on a gateway, backend RPCs) exactly like
// a job, so an unbudgeted flood of STATSREQ frames must hit BUSY the
// same way a flood of SUBMITs does.
func (c *conn) handleStatsReq(jobID uint64) {
	release, ok := c.admit(jobID)
	if !ok {
		return
	}
	c.jobWG.Add(1)
	go func() {
		defer c.jobWG.Done()
		defer release()
		stats, err := c.srv.disp.Stats()
		if err != nil {
			// A stats failure (e.g. no healthy gateway backend) is
			// job-scoped: the stream stays in sync, the connection lives.
			c.sendError(jobID, err.Error())
			return
		}
		c.srv.MergeTenantBusy(&stats)
		buf := wire.GetBuffer()
		buf.B = wire.AppendStats(buf.B, jobID, &stats)
		c.send(buf)
	}()
}

// handleSubmit admits, decodes and interns one submission, then hands the
// wait to a per-job goroutine so the read loop can keep pipelining.
// Admission runs first, on nothing but the already-parsed header: an
// over-budget client is rejected for the price of a BUSY frame, before
// the server spends decode work or intern-table mutations (and evictions)
// on a job it will not run.
func (c *conn) handleSubmit(f wire.Frame) {
	t0 := time.Now()
	release, ok := c.admit(f.JobID)
	if !ok {
		return
	}

	var err error
	var traceID uint64
	c.scratchOff, c.scratchRefs, traceID, err = f.DecodeSubmitInto(&c.scratch, c.scratchOff, c.scratchRefs, c.srv.cfg.MaxElems)
	if err != nil {
		// The frame itself was well-delimited, so the stream stays in
		// sync: reject the job, keep the connection.
		release()
		c.sendError(f.JobID, err.Error())
		return
	}
	decodeDone := time.Now()
	canon, hit := c.srv.intern.canonical(c.scratch.Fingerprint(), &c.scratch)
	if hit {
		c.srv.interned.Add(1)
	}

	// Every accepted job carries a timeline. A submitter-assigned trace ID
	// (a tracing client, or the gateway forwarding its own) is kept so the
	// job's timelines stitch across tiers; otherwise one is generated here.
	if traceID == 0 {
		traceID = obs.NewTraceID()
	}
	tl := tlPool.Get().(*obs.Timeline)
	tl.Reset()
	tl.TraceID = traceID
	tl.Add(obs.StageDecode, decodeDone.Sub(t0))
	tl.Add(obs.StageIntern, time.Since(decodeDone))

	w, err := c.srv.disp.Dispatch(canon, c.srv.getDst(canon.NumElems), tl, c.tenant.name)
	if err != nil {
		tlPool.Put(tl)
		release()
		if errors.Is(err, ErrOverloaded) {
			c.sendBusy(f.JobID, wire.BusyUpstream)
		} else {
			c.sendError(f.JobID, err.Error())
		}
		return
	}
	c.jobWG.Add(1)
	jobID := f.JobID
	go func() {
		defer c.jobWG.Done()
		defer release()
		res, err := w.Wait()
		if err != nil {
			// Exhaustion becomes BUSY (back off and retry); anything else
			// is a job-scoped ERROR. Either way the destination array may
			// still be referenced by a failed leg, so it is not recycled.
			tlPool.Put(tl)
			if errors.Is(err, ErrOverloaded) {
				c.sendBusy(jobID, wire.BusyUpstream)
			} else {
				c.sendError(jobID, err.Error())
			}
			return
		}
		buf := wire.GetBuffer()
		encStart := time.Now()
		buf.B = wire.AppendResult(buf.B, jobID, &res)
		tl.Add(obs.StageEncode, time.Since(encStart))
		// Whatever the attributed stages did not cover — result hand-off,
		// destination copies, waiter scheduling — is the merge/fan-out leg,
		// so the stage durations always sum to the job's total.
		total := time.Since(t0)
		tl.Add(obs.StageMerge, total-time.Duration(tl.TotalNs()))
		c.srv.observe(tl, total)
		tlPool.Put(tl)
		c.send(buf)
		// The result array is fully encoded into buf; recycle it for a
		// later submission's destination.
		c.srv.putDst(res.Values)
	}()
}

// admit charges one job against the admission budgets, checked from the
// narrowest scope outward — per-connection in-flight, the connection's
// tenant (in-flight quota, then token bucket), then the global in-flight
// bound — answering BUSY itself when any is exhausted, with the scoped
// code (BusyConn, BusyTenant, BusyGlobal) so the client knows what to
// back off from. A later gate's rejection rolls back every earlier
// charge, including refunding the rate token, so a rejected job leaves
// no residue in any budget. This is the single admission path for every
// frame type that holds a goroutine (SUBMIT, STATSREQ and the session
// operations alike); on success the caller must invoke the returned
// release exactly once.
func (c *conn) admit(jobID uint64) (func(), bool) {
	if c.inflight.Load() >= int64(c.srv.cfg.MaxInflightPerConn) {
		c.sendBusy(jobID, wire.BusyConn)
		return nil, false
	}
	ts := c.tenant
	if ts.maxInflight > 0 && ts.inflight.Add(1) > ts.maxInflight {
		ts.inflight.Add(-1)
		ts.busy.Add(1)
		c.sendBusy(jobID, wire.BusyTenant)
		return nil, false
	}
	if ts.bucket != nil && !ts.bucket.take() {
		if ts.maxInflight > 0 {
			ts.inflight.Add(-1)
		}
		ts.busy.Add(1)
		c.sendBusy(jobID, wire.BusyTenant)
		return nil, false
	}
	if c.srv.inflight.Add(1) > int64(c.srv.cfg.MaxInflightGlobal) {
		c.srv.inflight.Add(-1)
		if ts.bucket != nil {
			ts.bucket.refund()
		}
		if ts.maxInflight > 0 {
			ts.inflight.Add(-1)
		}
		c.sendBusy(jobID, wire.BusyGlobal)
		return nil, false
	}
	c.inflight.Add(1)
	return func() {
		c.inflight.Add(-1)
		if ts.maxInflight > 0 {
			ts.inflight.Add(-1)
		}
		c.srv.inflight.Add(-1)
	}, true
}

// sendSessionResult encodes and sends one session operation's RESULT,
// folding its timeline into the server's stage histograms. The engine
// leg's stages (queue wait, execute) ride the Result; encode and the
// uncovered remainder are attributed here, mirroring the submit waiter.
func (c *conn) sendSessionResult(jobID uint64, res *engine.Result, tl *obs.Timeline, t0 time.Time) {
	buf := wire.GetBuffer()
	encStart := time.Now()
	buf.B = wire.AppendResult(buf.B, jobID, res)
	tl.Add(obs.StageQueueWait, res.QueueWait)
	tl.Add(obs.StageExecute, res.Elapsed)
	tl.Add(obs.StageEncode, time.Since(encStart))
	total := time.Since(t0)
	tl.Add(obs.StageMerge, total-time.Duration(tl.TotalNs()))
	c.srv.observe(tl, total)
	tlPool.Put(tl)
	c.send(buf)
	c.srv.putDst(res.Values)
}

// handleOpenSession admits, decodes and registers one streaming session.
// Admission has a third gate beyond the in-flight budgets: the session
// store's residency and byte budgets, checked against the loop's
// estimated resident footprint before any state is built, with CLOCK
// eviction making room and BUSY(BusySession) when it cannot. The open
// itself (a full segment compute) runs on a waiter goroutine so the read
// loop keeps pipelining.
func (c *conn) handleOpenSession(f wire.Frame) {
	t0 := time.Now()
	release, ok := c.admit(f.JobID)
	if !ok {
		return
	}
	sd, isSession := c.srv.disp.(SessionDispatcher)
	if !isSession {
		// The gateway's routed dispatcher cannot pin resident state to
		// one backend; job-scoped refusal, the connection lives.
		release()
		c.sendError(f.JobID, "sessions unsupported by this peer")
		return
	}
	var sid uint64
	var err error
	sid, c.scratchOff, c.scratchRefs, err = f.DecodeOpenSessionInto(&c.scratch, c.scratchOff, c.scratchRefs, c.srv.cfg.MaxElems)
	if err != nil {
		release()
		c.sendError(f.JobID, err.Error())
		return
	}
	decodeDone := time.Now()
	key := sessKey{conn: c.id, sid: sid}
	if c.srv.sessions.get(key) != nil {
		release()
		c.sendError(f.JobID, fmt.Sprintf("session %d already open on this connection", sid))
		return
	}
	est := int64(reduction.DeltaStateBytes(&c.scratch, 0, c.srv.disp.Procs()))
	if err := c.srv.sessions.reserve(est); err != nil {
		release()
		c.sendBusy(f.JobID, wire.BusySession)
		return
	}
	// The scratch loop is reused by the very next frame; the session
	// needs its own copy (the engine's deep copy inside NewDeltaState
	// then owns the mutable refs).
	l := c.scratch.Clone()
	tl := tlPool.Get().(*obs.Timeline)
	tl.Reset()
	tl.TraceID = obs.NewTraceID()
	tl.Add(obs.StageDecode, decodeDone.Sub(t0))

	c.jobWG.Add(1)
	jobID := f.JobID
	tenant := c.tenant.name // captured: a later HELLO must not race the waiter
	go func() {
		defer c.jobWG.Done()
		defer release()
		dst := c.srv.getDst(l.NumElems)
		es, res, err := sd.OpenSession(l, 0, dst, tenant)
		if err != nil {
			c.srv.sessions.abort(est)
			c.srv.putDst(dst)
			tlPool.Put(tl)
			c.sendError(jobID, err.Error())
			return
		}
		ok := c.srv.sessions.commit(&serverSession{
			key:   key,
			es:    es,
			elems: l.NumElems,
			bytes: int64(es.Bytes()),
		}, est)
		if !ok {
			// A pipelined duplicate open won the race to install this key;
			// tear down the loser so the winner's session stays resident.
			es.Close()
			c.srv.putDst(res.Values)
			tlPool.Put(tl)
			c.sendError(jobID, fmt.Sprintf("session %d already open on this connection", sid))
			return
		}
		c.sendSessionResult(jobID, &res, tl, t0)
	}()
}

// handleDelta admits and decodes one delta batch, resolves its session
// (touching the TTL clock and CLOCK bit), and applies it on a waiter
// goroutine. An unknown, expired or evicted session draws the typed
// session-gone ERROR — never a stale sum.
func (c *conn) handleDelta(f wire.Frame) {
	t0 := time.Now()
	release, ok := c.admit(f.JobID)
	if !ok {
		return
	}
	var sid uint64
	var err error
	sid, c.scratchDelta, err = f.DecodeDelta(c.scratchDelta)
	if err != nil {
		release()
		c.sendError(f.JobID, err.Error())
		return
	}
	decodeDone := time.Now()
	ss := c.srv.sessions.get(sessKey{conn: c.id, sid: sid})
	if ss == nil {
		release()
		c.sendError(f.JobID, fmt.Sprintf("%sno session %d on this connection", wire.SessionGonePrefix, sid))
		return
	}
	// The decode scratch is reused by the next frame; the waiter gets its
	// own copy of the (small) batch.
	deltas := append([]reduction.RefDelta(nil), c.scratchDelta...)
	tl := tlPool.Get().(*obs.Timeline)
	tl.Reset()
	tl.TraceID = obs.NewTraceID()
	tl.Add(obs.StageDecode, decodeDone.Sub(t0))

	c.jobWG.Add(1)
	jobID := f.JobID
	go func() {
		defer c.jobWG.Done()
		defer release()
		dst := c.srv.getDst(ss.elems)
		res, err := ss.es.Apply(deltas, dst)
		if err != nil {
			c.srv.putDst(dst)
			tlPool.Put(tl)
			if errors.Is(err, engine.ErrSessionClosed) {
				// Evicted between the lookup above and the apply; the
				// client re-opens rather than trusting stale state.
				c.sendError(jobID, fmt.Sprintf("%ssession %d evicted", wire.SessionGonePrefix, sid))
			} else {
				c.sendError(jobID, err.Error())
			}
			return
		}
		c.sendSessionResult(jobID, &res, tl, t0)
	}()
}

// handleCloseSession retires one session, answering an empty RESULT that
// carries the final generation. Teardown waits for an in-flight apply
// (the engine session serializes its operations), so it runs on a waiter
// goroutine like every other potentially blocking operation.
func (c *conn) handleCloseSession(f wire.Frame) {
	release, ok := c.admit(f.JobID)
	if !ok {
		return
	}
	sid, err := f.DecodeCloseSession()
	if err != nil {
		release()
		c.sendError(f.JobID, err.Error())
		return
	}
	c.jobWG.Add(1)
	jobID := f.JobID
	go func() {
		defer c.jobWG.Done()
		defer release()
		ss, found := c.srv.sessions.close(sessKey{conn: c.id, sid: sid})
		if !found {
			c.sendError(jobID, fmt.Sprintf("%sno session %d on this connection", wire.SessionGonePrefix, sid))
			return
		}
		res := engine.Result{Scheme: "session", SessionGen: ss.es.Gen()}
		buf := wire.GetBuffer()
		buf.B = wire.AppendResult(buf.B, jobID, &res)
		c.send(buf)
	}()
}

// writeLoop serializes responses: pooled buffers in, one buffered socket
// out, flushing when the queue momentarily empties. After a write error
// it keeps draining (and freeing) buffers so no sender ever blocks on a
// dead connection.
func (c *conn) writeLoop() {
	defer close(c.writeDone)
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var werr error
	for buf := range c.writeCh {
		if werr == nil {
			_, werr = bw.Write(buf.B)
		}
		buf.Free()
		if werr == nil && len(c.writeCh) == 0 {
			werr = bw.Flush()
		}
	}
	if werr == nil {
		bw.Flush()
	}
}

// getDst returns a recycled destination array with capacity for n
// elements when one is available, else a fresh one. Destination recycling
// plus pooled frame buffers is what keeps the per-job steady state of the
// serving path allocation-free.
func (s *Server) getDst(n int) []float64 {
	if v := s.dstPool.Get(); v != nil {
		d := *(v.(*[]float64))
		if cap(d) >= n {
			return d[:n]
		}
	}
	return make([]float64, n)
}

// putDst recycles a destination array once its contents are encoded.
func (s *Server) putDst(d []float64) {
	if cap(d) == 0 {
		return
	}
	s.dstPool.Put(&d)
}
