package server

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// TenantSpec is one tenant's admission-control and scheduling contract,
// the server-side superset of engine.TenantConfig: the weight feeds the
// engine's deficit-round-robin scheduler, while the rate/burst/quota
// triple is enforced here at the front door, before a job ever reaches
// the queue. Zero rate means no rate limit; zero quota means no
// per-tenant in-flight bound.
type TenantSpec struct {
	// Name identifies the tenant; clients bind to it with the HELLO
	// tenant field. "default" configures the tenant unidentified clients
	// land on.
	Name string
	// Weight is the tenant's DRR scheduling weight (min 1).
	Weight int
	// Rate is the sustained admission rate in jobs per second (0 = no
	// rate limit).
	Rate float64
	// Burst is the token-bucket depth: how many jobs may arrive
	// back-to-back before the rate bites. Defaults to max(1, Rate) when
	// a rate is set.
	Burst float64
	// MaxInflight bounds the tenant's jobs in flight across all of its
	// connections (0 = no bound).
	MaxInflight int
}

// ParseTenantSpecs parses the -tenants flag syntax: a comma-separated
// list of name[:weight[:rate[:burst[:quota]]]] entries, fields optional
// from the right. "gold:4:500:64:128,best-effort:1" declares a gold
// tenant with weight 4, 500 jobs/s sustained, bursts of 64 and at most
// 128 in flight, plus an unlimited weight-1 best-effort tenant.
func ParseTenantSpecs(s string) ([]TenantSpec, error) {
	var specs []TenantSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) > 5 {
			return nil, fmt.Errorf("server: tenant spec %q: too many fields", entry)
		}
		sp := TenantSpec{Name: strings.TrimSpace(parts[0]), Weight: 1}
		if sp.Name == "" {
			return nil, fmt.Errorf("server: tenant spec %q: empty name", entry)
		}
		var err error
		if len(parts) > 1 && parts[1] != "" {
			if sp.Weight, err = strconv.Atoi(parts[1]); err != nil || sp.Weight < 1 {
				return nil, fmt.Errorf("server: tenant %s: bad weight %q", sp.Name, parts[1])
			}
		}
		if len(parts) > 2 && parts[2] != "" {
			if sp.Rate, err = strconv.ParseFloat(parts[2], 64); err != nil || sp.Rate < 0 {
				return nil, fmt.Errorf("server: tenant %s: bad rate %q", sp.Name, parts[2])
			}
		}
		if len(parts) > 3 && parts[3] != "" {
			if sp.Burst, err = strconv.ParseFloat(parts[3], 64); err != nil || sp.Burst < 0 {
				return nil, fmt.Errorf("server: tenant %s: bad burst %q", sp.Name, parts[3])
			}
		}
		if len(parts) > 4 && parts[4] != "" {
			if sp.MaxInflight, err = strconv.Atoi(parts[4]); err != nil || sp.MaxInflight < 0 {
				return nil, fmt.Errorf("server: tenant %s: bad quota %q", sp.Name, parts[4])
			}
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// EngineTenants projects the scheduling half of the specs — the part the
// engine's weighted queues need — so reduxd configures both layers from
// one flag.
func EngineTenants(specs []TenantSpec) []engine.TenantConfig {
	out := make([]engine.TenantConfig, 0, len(specs))
	for _, sp := range specs {
		out = append(out, engine.TenantConfig{Name: sp.Name, Weight: sp.Weight})
	}
	return out
}

// tokenBucket is a classic leaky-bucket rate limiter with a pluggable
// clock (tests pin refill arithmetic against a fake one). take charges
// one token, lazily refilling from elapsed wall time; refund returns a
// token when admission later rolls back (the global gate rejected a job
// the bucket already charged).
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	rate   float64 // tokens per second
	burst  float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{tokens: burst, rate: rate, burst: burst, now: now, last: now()}
}

func (b *tokenBucket) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	b.tokens += t.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (b *tokenBucket) refund() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens++
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// tenantState is one tenant's live admission state: the token bucket and
// in-flight gauge the admit path charges, plus the rejection counter the
// stats path folds into the engine's per-tenant rows (the engine never
// sees rejected jobs, so BUSY(BusyTenant) counts live here).
type tenantState struct {
	name        string
	weight      int
	maxInflight int64        // 0 = unbounded
	bucket      *tokenBucket // nil = no rate limit

	inflight atomic.Int64
	busy     atomic.Uint64
}

// buildTenantTable realizes the configured specs, always materializing
// the default tenant first (unlimited unless a spec named "default"
// overrides it) so unidentified connections have somewhere to land.
func buildTenantTable(specs []TenantSpec, now func() time.Time) (map[string]*tenantState, []*tenantState) {
	def := &tenantState{name: engine.DefaultTenant, weight: 1}
	byName := map[string]*tenantState{def.name: def}
	list := []*tenantState{def}
	for _, sp := range specs {
		ts := byName[sp.Name]
		if ts == nil {
			ts = &tenantState{name: sp.Name}
			byName[sp.Name] = ts
			list = append(list, ts)
		}
		ts.weight = sp.Weight
		if ts.weight < 1 {
			ts.weight = 1
		}
		ts.maxInflight = int64(sp.MaxInflight)
		if sp.Rate > 0 {
			ts.bucket = newTokenBucket(sp.Rate, sp.Burst, now)
		}
	}
	return byName, list
}

// tenantFor resolves a HELLO-supplied tenant name; unknown names degrade
// to the default tenant rather than failing the connection, mirroring
// the engine's TenantIndex.
func (s *Server) tenantFor(name string) *tenantState {
	if ts := s.tenants[name]; ts != nil {
		return ts
	}
	return s.tenantList[0]
}

// MergeTenantBusy folds the server-side per-tenant rejection counters
// into an engine stats snapshot's tenant rows, matching by name and
// appending rows for tenants the engine has not seen yet. The engine
// cannot count these itself: a job rejected by BUSY(BusyTenant) never
// reaches it. No-op on single-tenant servers so legacy STATS frames stay
// byte-identical.
func (s *Server) MergeTenantBusy(st *engine.Stats) {
	if len(s.tenantList) <= 1 {
		return
	}
	for _, ts := range s.tenantList {
		busy := ts.busy.Load()
		found := false
		for i := range st.Tenants {
			if st.Tenants[i].Name == ts.name {
				st.Tenants[i].Busy += busy
				found = true
				break
			}
		}
		if !found {
			st.Tenants = append(st.Tenants, engine.TenantStats{Name: ts.name, Weight: ts.weight, Busy: busy})
		}
	}
}

// TenantBusy reports one tenant's admission rejections (0 for unknown
// names) — the per-tenant slice of the server Busy counter.
func (s *Server) TenantBusy(name string) uint64 {
	if ts := s.tenants[name]; ts != nil {
		return ts.busy.Load()
	}
	return 0
}
