package server

import (
	"testing"
	"time"

	"repro/internal/engine"
)

// mkStoreSession builds a store entry around an empty engine session
// (Close on it is a no-op), sized for byte-account assertions.
func mkStoreSession(key sessKey, bytes int64) *serverSession {
	ss := &serverSession{key: key, es: &engine.Session{}, bytes: bytes}
	ss.lastUsed.Store(time.Now().UnixNano())
	return ss
}

// TestExpireMassSweepKeepsByteAccount pins the mass-expiry sweep against
// the in-place ring compaction: expiring every resident session at once
// crosses the compaction threshold mid-sweep, and a sweep that kept
// ranging over the rewritten backing array would remove sessions twice,
// driving the byte account negative and over-admitting ever after.
func TestExpireMassSweepKeepsByteAccount(t *testing.T) {
	const n, sz = 32, int64(100)
	st := newSessionStore(2*n, 50*time.Millisecond, n*sz+1)
	for i := 0; i < n; i++ {
		if err := st.reserve(sz); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
		if !st.commit(mkStoreSession(sessKey{conn: 1, sid: uint64(i)}, sz), sz) {
			t.Fatalf("commit %d failed", i)
		}
	}
	past := time.Now().Add(-time.Second).UnixNano()
	st.mu.Lock()
	for _, ss := range st.m {
		ss.lastUsed.Store(past)
	}
	st.expireLocked(time.Now().UnixNano())
	residency, bytes := len(st.m), st.bytes
	st.mu.Unlock()
	if residency != 0 {
		t.Fatalf("residency %d after mass expiry, want 0", residency)
	}
	if bytes != 0 {
		t.Fatalf("byte account %d after mass expiry, want 0", bytes)
	}
	if got := st.evictions.Load(); got != n {
		t.Fatalf("evictions %d, want %d", got, n)
	}
}

// TestCommitDuplicateKeyFails pins atomic install-time uniqueness: two
// pipelined opens with the same sid both pass the read loop's lookup, so
// the second commit must fail (releasing its reservation) instead of
// overwriting the winner — and a later removal of the loser must not
// tear down the winner's map entry.
func TestCommitDuplicateKeyFails(t *testing.T) {
	st := newSessionStore(4, time.Minute, 1<<20)
	key := sessKey{conn: 1, sid: 7}
	first := mkStoreSession(key, 100)
	if err := st.reserve(100); err != nil {
		t.Fatal(err)
	}
	if !st.commit(first, 100) {
		t.Fatal("first commit failed")
	}
	if err := st.reserve(100); err != nil {
		t.Fatal(err)
	}
	dup := mkStoreSession(key, 100)
	if st.commit(dup, 100) {
		t.Fatal("duplicate commit succeeded")
	}
	st.mu.Lock()
	winner, bytes, reserved := st.m[key], st.bytes, st.reserved
	st.mu.Unlock()
	if winner != first {
		t.Fatal("duplicate commit displaced the first session")
	}
	if bytes != 100 {
		t.Fatalf("byte account %d after failed commit, want 100", bytes)
	}
	if reserved != 0 {
		t.Fatalf("reserved %d after failed commit, want 0", reserved)
	}
	if got := st.opens.Load(); got != 1 {
		t.Fatalf("opens %d, want 1", got)
	}
	// The loser never installed; removing it (as an eviction pass over a
	// stale pointer would) must leave the winner resident.
	st.mu.Lock()
	st.removeLocked(dup)
	stillThere := st.m[key] == first
	bytes = st.bytes
	st.mu.Unlock()
	if !stillThere {
		t.Fatal("removing the uninstalled loser tore down the winner")
	}
	if bytes != 100 {
		t.Fatalf("byte account %d after loser removal, want 100", bytes)
	}
}
