package server_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workloads"
)

// TestTenantQuotaBusy pins the per-tenant in-flight quota end to end: a
// tenant-bound client flooding past its quota draws BUSY while an
// unbound (default-tenant) client on the same server sails through, and
// the rejections land on the tenant's own counter.
func TestTenantQuotaBusy(t *testing.T) {
	tenants := []server.TenantSpec{{Name: "capped", Weight: 1, MaxInflight: 1}}
	_, srv, addr, teardown := startServer(t,
		engine.Config{Workers: 1, Tenants: server.EngineTenants(tenants)},
		server.Config{Tenants: tenants})
	defer teardown()

	capped, err := client.Dial(addr, client.Config{Conns: 1, Tenant: "capped"})
	if err != nil {
		t.Fatal(err)
	}
	defer capped.Close()
	free, err := client.Dial(addr, client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer free.Close()

	l := workloads.MixedSet(0.5)[0]
	want := l.RunSequential()
	const flood = 32
	handles := make([]*client.Handle, flood)
	for i := range handles {
		h, err := capped.SubmitAsync(l)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	busy, ok := 0, 0
	for _, h := range handles {
		res, err := h.Wait()
		switch {
		case err == nil:
			assertMatches(t, l.Name, res.Values, want)
			ok++
		case errors.Is(err, client.ErrBusy):
			busy++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if busy == 0 || ok == 0 {
		t.Fatalf("quota 1 over %d pipelined jobs: ok=%d busy=%d, want both non-zero", flood, ok, busy)
	}
	if got := srv.TenantBusy("capped"); got != uint64(busy) {
		t.Fatalf("tenant busy counter %d, client saw %d rejections", got, busy)
	}

	// The default tenant shares no quota with "capped": its jobs all run.
	for i := 0; i < 4; i++ {
		res, err := free.Submit(l)
		if err != nil {
			t.Fatalf("default-tenant job rejected: %v", err)
		}
		assertMatches(t, l.Name, res.Values, want)
	}
	if got := srv.TenantBusy(engine.DefaultTenant); got != 0 {
		t.Fatalf("default tenant counted %d busy, want 0", got)
	}
}

// TestTenantRateLimitBusy pins the token bucket end to end: with a
// near-zero refill rate and burst 2, exactly the burst is admitted and
// the rest draw BUSY, deterministically.
func TestTenantRateLimitBusy(t *testing.T) {
	tenants := []server.TenantSpec{{Name: "trickle", Weight: 1, Rate: 0.0001, Burst: 2}}
	_, srv, addr, teardown := startServer(t,
		engine.Config{Workers: 1, Tenants: server.EngineTenants(tenants)},
		server.Config{Tenants: tenants})
	defer teardown()

	cl, err := client.Dial(addr, client.Config{Conns: 1, Tenant: "trickle"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	l := workloads.MixedSet(0.5)[0]
	const flood = 8
	busy, ok := 0, 0
	handles := make([]*client.Handle, flood)
	for i := range handles {
		h, err := cl.SubmitAsync(l)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for _, h := range handles {
		if _, err := h.Wait(); err == nil {
			ok++
		} else if errors.Is(err, client.ErrBusy) {
			busy++
		} else {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok != 2 || busy != flood-2 {
		t.Fatalf("burst 2 over %d jobs: ok=%d busy=%d, want exactly 2 admitted", flood, ok, busy)
	}
	if got := srv.TenantBusy("trickle"); got != uint64(busy) {
		t.Fatalf("tenant busy counter %d, want %d", got, busy)
	}
}

// TestTenantStatsOverWire drives jobs under two tenant identities and
// reads the per-tenant attribution back through a STATS round trip — the
// full path: HELLO binding, weighted dispatch, engine rows, the server's
// busy merge, and the fifth STATS tail.
func TestTenantStatsOverWire(t *testing.T) {
	tenants := []server.TenantSpec{
		{Name: "gold", Weight: 4},
		{Name: "bronze", Weight: 1, MaxInflight: 1},
	}
	_, _, addr, teardown := startServer(t,
		engine.Config{Workers: 1, Tenants: server.EngineTenants(tenants)},
		server.Config{Tenants: tenants})
	defer teardown()

	gold, err := client.Dial(addr, client.Config{Conns: 1, Tenant: "gold"})
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	bronze, err := client.Dial(addr, client.Config{Conns: 1, Tenant: "bronze"})
	if err != nil {
		t.Fatal(err)
	}
	defer bronze.Close()

	l := workloads.MixedSet(0.3)[0]
	const goldJobs, bronzeJobs = 6, 3
	for i := 0; i < goldJobs; i++ {
		if _, err := gold.Submit(l); err != nil {
			t.Fatal(err)
		}
	}
	bronzeBusy := 0
	for i := 0; i < bronzeJobs; {
		if _, err := bronze.Submit(l); err != nil {
			if errors.Is(err, client.ErrBusy) {
				bronzeBusy++
				time.Sleep(time.Millisecond)
				continue
			}
			t.Fatal(err)
		}
		i++
	}

	stats, err := gold.Stats()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]engine.TenantStats{}
	for _, row := range stats.Tenants {
		rows[row.Name] = row
	}
	if len(rows) != 3 {
		t.Fatalf("stats carried %d tenant rows %v, want default+gold+bronze", len(rows), rows)
	}
	if g := rows["gold"]; g.Jobs != goldJobs || g.Weight != 4 {
		t.Errorf("gold row = %+v, want %d jobs at weight 4", g, goldJobs)
	}
	if b := rows["bronze"]; b.Jobs != bronzeJobs || b.Busy != uint64(bronzeBusy) {
		t.Errorf("bronze row = %+v, want %d jobs, %d busy", b, bronzeJobs, bronzeBusy)
	}
	if d := rows[engine.DefaultTenant]; d.Jobs != 0 {
		t.Errorf("default tenant charged %d jobs nobody submitted", d.Jobs)
	}
}

// TestAdmissionReleaseBalanced is the regression pin for the admission
// consolidation: every handler now runs the same admit path, so a storm
// of rejections and successes across every gate (conn, tenant quota,
// rate, global) must leave all in-flight gauges at exactly zero — the
// historical bug class here was an early return that charged a counter
// and never rolled it back.
func TestAdmissionReleaseBalanced(t *testing.T) {
	tenants := []server.TenantSpec{{Name: "capped", Weight: 1, MaxInflight: 2}}
	_, srv, addr, teardown := startServer(t,
		engine.Config{Workers: 1, Tenants: server.EngineTenants(tenants)},
		server.Config{Tenants: tenants, MaxInflightPerConn: 4, MaxInflightGlobal: 8})
	defer teardown()

	l := workloads.MixedSet(0.5)[0]
	for round := 0; round < 3; round++ {
		cl, err := client.Dial(addr, client.Config{Conns: 2, Tenant: "capped"})
		if err != nil {
			t.Fatal(err)
		}
		var handles []*client.Handle
		for i := 0; i < 48; i++ {
			h, err := cl.SubmitAsync(l)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		// STATSREQ rides the same admission path; hammer it too.
		for i := 0; i < 8; i++ {
			_, _ = cl.Stats()
		}
		for _, h := range handles {
			if _, err := h.Wait(); err != nil && !errors.Is(err, client.ErrBusy) {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		cl.Close()

		// Releases run just after the response is sent; give the deferred
		// unwind a beat before asserting exact zero.
		deadline := time.Now().Add(2 * time.Second)
		for srv.Inflight() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: global in-flight stuck at %d after all jobs resolved", round, srv.Inflight())
			}
			time.Sleep(time.Millisecond)
		}
	}
	if srv.Stats().Busy == 0 {
		t.Fatal("storm produced no rejections — the regression gates were never exercised")
	}
}
