package server_test

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/testkit"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// startServer boots an engine and a server on a loopback listener via
// the shared testkit and returns the stack; teardown is registered with
// t.Cleanup.
func startServer(t *testing.T, ecfg engine.Config, scfg server.Config) (*engine.Engine, *server.Server, string, func()) {
	t.Helper()
	d := testkit.StartDaemon(t, ecfg, scfg)
	return d.Eng, d.Srv, d.Addr, d.Close
}

func assertMatches(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: result length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("%s: element %d = %g, want %g", name, i, got[i], want[i])
		}
	}
}

// TestServeMatchesSequential drives the full network path — encode,
// server decode, intern, engine, result encode, client decode — and
// checks every result against the sequential reference.
func TestServeMatchesSequential(t *testing.T) {
	_, _, addr, teardown := startServer(t, engine.Config{}, server.Config{})
	defer teardown()

	cl, err := client.Dial(addr, client.Config{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	h, err := cl.Hello()
	if err != nil || h.Version != wire.ProtoVersion || h.Procs != 4 {
		t.Fatalf("hello %+v, err %v", h, err)
	}

	loops := workloads.MixedSet(0.2)[:3]
	var dst []float64
	for rep := 0; rep < 3; rep++ {
		for _, l := range loops {
			res, err := cl.SubmitInto(l, dst)
			if err != nil {
				t.Fatalf("%s: %v", l.Name, err)
			}
			if res.Scheme == "" || res.BatchSize < 1 {
				t.Fatalf("%s: bad result metadata %+v", l.Name, res)
			}
			assertMatches(t, l.Name, res.Values, l.RunSequential())
			dst = res.Values
		}
	}

	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != uint64(3*len(loops)) {
		t.Fatalf("server engine saw %d jobs, want %d", stats.Jobs, 3*len(loops))
	}
}

// TestPipelinedOutOfOrder keeps many jobs in flight on one connection;
// every handle must resolve with the right loop's result even though the
// server answers in completion order.
func TestPipelinedOutOfOrder(t *testing.T) {
	_, _, addr, teardown := startServer(t, engine.Config{Workers: 4}, server.Config{})
	defer teardown()

	cl, err := client.Dial(addr, client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	loops := workloads.MixedSet(0.2)[:3]
	refs := make([][]float64, len(loops))
	for i, l := range loops {
		refs[i] = l.RunSequential()
	}
	const inflight = 24
	handles := make([]*client.Handle, inflight)
	for i := range handles {
		h, err := cl.SubmitAsync(loops[i%len(loops)])
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		assertMatches(t, loops[i%len(loops)].Name, res.Values, refs[i%len(loops)])
	}
}

// TestAdmissionControlBusy floods one connection far past its in-flight
// budget: the overflow must come back as explicit BUSY rejections, not
// queue without bound, and every admitted job must still succeed.
func TestAdmissionControlBusy(t *testing.T) {
	eng, srv, addr, teardown := startServer(t,
		engine.Config{Workers: 1},
		server.Config{MaxInflightPerConn: 2})
	defer teardown()
	_ = eng

	cl, err := client.Dial(addr, client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	l := workloads.MixedSet(0.5)[0]
	want := l.RunSequential()
	const flood = 64
	handles := make([]*client.Handle, flood)
	for i := range handles {
		h, err := cl.SubmitAsync(l)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	busy, ok := 0, 0
	for _, h := range handles {
		res, err := h.Wait()
		switch {
		case err == nil:
			assertMatches(t, l.Name, res.Values, want)
			ok++
		case errors.Is(err, client.ErrBusy):
			busy++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if busy == 0 {
		t.Fatalf("no BUSY rejections across %d pipelined jobs with budget 2 (ok=%d)", flood, ok)
	}
	if ok == 0 {
		t.Fatal("admission control rejected everything")
	}
	if s := srv.Stats(); s.Busy != uint64(busy) {
		t.Fatalf("server counted %d busy, client saw %d", s.Busy, busy)
	}
}

// TestCoalescingSurvivesNetworkHop is the point of the subsystem: a hot
// pattern submitted repeatedly over the wire decodes to distinct objects,
// but interning maps them onto one canonical loop, so the engine's batch
// fusion engages exactly as it does in-process.
func TestCoalescingSurvivesNetworkHop(t *testing.T) {
	eng, srv, addr, teardown := startServer(t,
		engine.Config{Workers: 1, QueueDepth: 4},
		server.Config{})
	defer teardown()

	cl, err := client.Dial(addr, client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	l := workloads.MixedSet(0.3)[0]
	want := l.RunSequential()
	if _, err := cl.Submit(l); err != nil { // warm decision cache
		t.Fatal(err)
	}
	warm := eng.Stats()

	const jobs = 32
	handles := make([]*client.Handle, jobs)
	for i := range handles {
		h, err := cl.SubmitAsync(l)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	coalescedSeen := false
	for i, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		assertMatches(t, l.Name, res.Values, want)
		if res.BatchSize > 1 {
			coalescedSeen = true
		}
	}
	s := eng.Stats()
	if got := s.Jobs - warm.Jobs; got != jobs {
		t.Fatalf("engine executed %d jobs, want %d", got, jobs)
	}
	if s.Coalesced == warm.Coalesced {
		t.Fatalf("no jobs coalesced across the network hop (batches %d for %d jobs)",
			s.Batches-warm.Batches, jobs)
	}
	if !coalescedSeen {
		t.Fatal("no result reported BatchSize > 1")
	}
	if ss := srv.Stats(); ss.InternHits < jobs {
		t.Fatalf("intern hits %d, want >= %d (every repeat should hit)", ss.InternHits, jobs)
	}
}

// TestGracefulShutdownResolvesInflight submits a burst, shuts the server
// down mid-flight, and requires every handle to resolve — result or
// error, never a hang — and the engine to remain usable afterwards.
func TestGracefulShutdownResolvesInflight(t *testing.T) {
	eng, err := engine.New(engine.Config{Workers: 1, Platform: core.DefaultPlatform(4)})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(eng, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	cl, err := client.Dial(ln.Addr().String(), client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	l := workloads.MixedSet(0.3)[0]
	want := l.RunSequential()
	const jobs = 16
	handles := make([]*client.Handle, jobs)
	for i := range handles {
		h, err := cl.SubmitAsync(l)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(10 * time.Second) }()

	resolved := make(chan struct{})
	go func() {
		defer close(resolved)
		for i, h := range handles {
			res, err := h.Wait()
			if err == nil {
				assertMatches(t, l.Name, res.Values, want)
			} else if !errors.Is(err, client.ErrConnLost) {
				t.Errorf("job %d: unexpected error %v", i, err)
			}
		}
	}()
	select {
	case <-resolved:
	case <-time.After(20 * time.Second):
		t.Fatal("handles did not resolve within 20s of Shutdown")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != server.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}

	// The engine is borrowed, not owned: it must still work in-process.
	res, err := eng.Submit(l)
	if err != nil {
		t.Fatalf("engine unusable after server shutdown: %v", err)
	}
	assertMatches(t, l.Name, res.Values, want)

	// And new network submissions must fail cleanly, not hang.
	if _, err := cl.Submit(l); err == nil {
		t.Fatal("submit after shutdown succeeded")
	}
}

// TestProtocolViolationsClose drives raw bytes at the server: a bad
// preamble closes silently; garbage after a valid preamble draws a fatal
// connection-scoped ERROR before close.
func TestProtocolViolationsClose(t *testing.T) {
	_, _, addr, teardown := startServer(t, engine.Config{}, server.Config{})
	defer teardown()

	// Bad magic.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte("GET / HTTP/1.1\r\n"))
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	if n, _ := nc.Read(buf); n != 0 {
		t.Fatalf("server answered a bad preamble with %d bytes", n)
	}
	nc.Close()

	// Valid preamble, corrupt frame.
	nc, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WritePreamble(nc); err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte{5, 0, 0, 0, 99, 1, 2, 3, 4}) // unknown frame type 99
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := wire.NewReader(nc, 1<<20)
	f, err := r.Next() // HELLO
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecodeHello(); err != nil {
		t.Fatal(err)
	}
	f, err = r.Next()
	if err != nil || f.Type != wire.FrameError || f.JobID != 0 {
		t.Fatalf("expected fatal ERROR frame, got %+v err %v", f, err)
	}
}

// TestInternTable checks the canonicalization rules directly: same
// pattern converges on one pointer, different patterns do not, and
// residency stays bounded under churn.
func TestInternTable(t *testing.T) {
	mk := func(seed int64) *trace.Loop {
		l := trace.NewLoop("intern", 64)
		for i := 0; i < 8; i++ {
			l.AddIter(int32((int(seed)*7 + i*13) % 64))
		}
		return l
	}
	// Exercised through the server-facing behavior: repeated submissions
	// of equal patterns over separate connections must converge.
	_, srv, addr, teardown := startServer(t, engine.Config{}, server.Config{})
	defer teardown()
	cl1, err := client.Dial(addr, client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	cl2, err := client.Dial(addr, client.Config{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	l := mk(1)
	if _, err := cl1.Submit(l); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Submit(l.Clone()); err != nil { // distinct object, same pattern
		t.Fatal(err)
	}
	if _, err := cl1.Submit(mk(2)); err != nil {
		t.Fatal(err)
	}
	s := srv.Stats()
	if s.InternHits != 1 {
		t.Fatalf("intern hits %d, want 1 (cross-connection repeat)", s.InternHits)
	}
	if s.InternedLoops != 2 {
		t.Fatalf("interned loops %d, want 2", s.InternedLoops)
	}
}

// TestConcurrentClients hammers one server from several client pools at
// once (run under -race in CI) and verifies a sample of results.
func TestConcurrentClients(t *testing.T) {
	_, _, addr, teardown := startServer(t, engine.Config{Workers: 4}, server.Config{})
	defer teardown()

	loops := workloads.MixedSet(0.2)[:3]
	refs := make([][]float64, len(loops))
	for i, l := range loops {
		refs[i] = l.RunSequential()
	}
	const clients = 4
	const perClient = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Config{Conns: 2})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			var dst []float64
			for i := 0; i < perClient; i++ {
				l := loops[(g+i)%len(loops)]
				res, err := cl.SubmitInto(l, dst)
				if err != nil {
					errs <- err
					return
				}
				want := refs[(g+i)%len(loops)]
				for k := range want {
					if math.Abs(res.Values[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
						errs <- errors.New(l.Name + ": result diverged")
						return
					}
				}
				dst = res.Values
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
