package pclr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simarch"
	"repro/internal/trace"
)

func TestShadowCodec(t *testing.T) {
	addrs := []int64{0, 64, 1 << 21, (1 << 40) - 8}
	for _, a := range addrs {
		s := ToShadow(a)
		if !IsShadow(s) {
			t.Errorf("ToShadow(%d) not recognized as shadow", a)
		}
		if IsShadow(a) {
			t.Errorf("plain address %d recognized as shadow", a)
		}
		if got := FromShadow(s); got != a {
			t.Errorf("round trip %d -> %d", a, got)
		}
	}
}

func TestShadowCodecProperty(t *testing.T) {
	f := func(raw uint32) bool {
		a := int64(raw) * 8
		return FromShadow(ToShadow(a)) == a && IsShadow(ToShadow(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHardwareConfigValidate(t *testing.T) {
	ok := HardwareConfig{Op: trace.OpAdd, Controller: simarch.Hardwired, ElemBytes: 8}
	if err := ok.Validate(); err != nil {
		t.Errorf("add should validate: %v", err)
	}
	for _, op := range []trace.Op{trace.OpMax, trace.OpMin} {
		hc := HardwareConfig{Op: op, ElemBytes: 8}
		if err := hc.Validate(); err != nil {
			t.Errorf("%v should validate (FP comparator): %v", op, err)
		}
	}
	bad := HardwareConfig{Op: trace.OpMul, ElemBytes: 8}
	if err := bad.Validate(); err == nil {
		t.Error("multiply must be rejected")
	}
	badSize := HardwareConfig{Op: trace.OpAdd, ElemBytes: 3}
	if err := badSize.Validate(); err == nil {
		t.Error("element size 3 must be rejected")
	}
}

func TestCombinerNeutralLineIsNoop(t *testing.T) {
	// Combining a line of pure neutral elements must leave memory
	// unchanged — the property that makes line-granularity combining
	// correct when only some elements were touched.
	c := NewCombiner(trace.OpAdd, 16)
	c.CombineLine(0, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	before := append([]float64(nil), c.Memory()...)
	neutral := make([]float64, 8)
	c.CombineLine(0, neutral)
	for i, v := range c.Memory() {
		if v != before[i] {
			t.Fatalf("neutral combine changed element %d: %g -> %g", i, before[i], v)
		}
	}
}

func TestCombinerAccumulates(t *testing.T) {
	c := NewCombiner(trace.OpAdd, 8)
	c.CombineLine(0, []float64{1, 0, 0, 0, 0, 0, 0, 0})
	c.CombineLine(0, []float64{2, 3, 0, 0, 0, 0, 0, 0})
	if c.Memory()[0] != 3 || c.Memory()[1] != 3 {
		t.Errorf("memory = %v", c.Memory()[:2])
	}
}

func TestCombinerBoundsClamped(t *testing.T) {
	c := NewCombiner(trace.OpAdd, 4)
	// Line partially beyond the array must not panic.
	c.CombineLine(2, []float64{1, 1, 1, 1, 1, 1, 1, 1})
	if c.Memory()[2] != 1 || c.Memory()[3] != 1 {
		t.Errorf("in-range elements not combined: %v", c.Memory())
	}
}

func TestCombinerMaxNeutral(t *testing.T) {
	c := NewCombiner(trace.OpMax, 4)
	if !math.IsInf(c.Memory()[0], -1) {
		t.Error("max combiner must initialize to -Inf")
	}
	line := []float64{math.Inf(-1), 5, math.Inf(-1), math.Inf(-1)}
	c.CombineLine(0, line)
	if c.Memory()[1] != 5 {
		t.Errorf("max combine: got %g", c.Memory()[1])
	}
	if !math.IsInf(c.Memory()[0], -1) {
		t.Error("untouched element must stay at neutral")
	}
}

func TestCombineOccupancyFlexFactor(t *testing.T) {
	cfg := simarch.DefaultConfig(4)
	hw := cfg.CombineOccupancy(simarch.Hardwired)
	flex := cfg.CombineOccupancy(simarch.Programmable)
	if flex <= hw {
		t.Errorf("Flex occupancy (%g) must exceed Hw (%g)", flex, hw)
	}
	if math.Abs(flex/hw-cfg.FlexOccupancyFactor) > 1e-9 {
		t.Errorf("Flex/Hw ratio %g, want %g", flex/hw, cfg.FlexOccupancyFactor)
	}
}
