// Package pclr implements the protocol-level pieces of Private Cache-Line
// Reduction (Section 5): the shadow-address mechanism that lets an
// unmodified processor mark reduction accesses (Section 5.1.5), the
// runtime calls the compiler inserts around a PCLR loop (Figure 5's
// ConfigHardware and CacheFlush), and the statistics Table 2 reports
// (lines flushed at the end of the loop, lines displaced — and therefore
// combined in the background — during the loop).
package pclr

import (
	"fmt"

	"repro/internal/simarch"
	"repro/internal/trace"
)

// ShadowBit is the address bit that places an access above installed
// physical memory. The directory controller recognizes such addresses as
// reduction accesses and maps them back to the original array ("they can
// have their most significant bit flipped" — Section 5.1.5).
const ShadowBit = int64(1) << 45

// ToShadow maps an original data address into the shadow region.
func ToShadow(addr int64) int64 { return addr | ShadowBit }

// FromShadow recovers the original address of a shadow access.
func FromShadow(addr int64) int64 { return addr &^ ShadowBit }

// IsShadow reports whether the address lies in the shadow region.
func IsShadow(addr int64) bool { return addr&ShadowBit != 0 }

// HardwareConfig is the per-loop directory-controller programming the
// compiler-inserted system call installs before a reduction loop
// (Figure 5, line 1): the reduction operator and element type. With this
// simple approach only one reduction operation per parallel section is
// supported; loops mixing operators must be distributed (Section 5.1.4).
type HardwareConfig struct {
	Op         trace.Op
	Controller simarch.Controller
	// ElemBytes is the reduction element size (8 for double precision).
	ElemBytes int
}

// Validate reports the first unsupported configuration, or nil. The
// directory execution units support FP add and compare (min/max) and
// integer operations; FP multiply would complicate the controller and is
// rare, so it is rejected exactly as the paper argues it can be.
func (hc HardwareConfig) Validate() error {
	switch hc.Op {
	case trace.OpAdd, trace.OpMax, trace.OpMin:
	default:
		return fmt.Errorf("pclr: directory execution units do not implement %v; distribute the loop or fall back to software", hc.Op)
	}
	if hc.ElemBytes != 8 && hc.ElemBytes != 4 {
		return fmt.Errorf("pclr: unsupported element size %d", hc.ElemBytes)
	}
	return nil
}

// ConfigCallCycles is the processor cost of the ConfigHardware system
// call each processor issues before the loop.
const ConfigCallCycles = 400

// Stats aggregates PCLR activity over one loop execution on the machine.
type Stats struct {
	// LinesDisplaced counts reduction lines displaced from caches during
	// the loop and combined in the background (Table 2, last column).
	LinesDisplaced int
	// LinesFlushed counts reduction lines flushed (and combined) at the
	// end of the loop (Table 2, second-to-last column).
	LinesFlushed int
	// NeutralFills counts reduction misses satisfied locally with
	// neutral-element lines.
	NeutralFills int
	// Combines counts combining operations performed by the directory
	// controllers (displacements + flushes).
	Combines int
	// Recalls counts lines that were dirty in some cache under the
	// ordinary protocol when their first reduction write-back arrived
	// (Section 5.1.3's recall-and-invalidate path).
	Recalls int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.LinesDisplaced += other.LinesDisplaced
	s.LinesFlushed += other.LinesFlushed
	s.NeutralFills += other.NeutralFills
	s.Combines += other.Combines
	s.Recalls += other.Recalls
}

// Combiner accumulates reduction partial results into a memory image,
// exactly as the home directory controller's execution units do. It is
// the functional (value-level) half of PCLR, used by the machine
// simulator to verify that background combining plus the final flush
// reproduce the sequential reduction result.
type Combiner struct {
	op  trace.Op
	mem []float64
}

// NewCombiner returns a combiner over an array of n elements initialized
// to... the ORIGINAL memory contents, which for a reduction loop is the
// operator's neutral element in every position the loop may touch.
func NewCombiner(op trace.Op, n int) *Combiner {
	c := &Combiner{op: op, mem: make([]float64, n)}
	neutral := op.Neutral()
	for i := range c.mem {
		c.mem[i] = neutral
	}
	return c
}

// CombineLine merges a displaced or flushed line's elements into memory.
// Untouched elements of the line still hold the neutral element, so
// merging them leaves memory unchanged — the property that makes PCLR's
// line-granularity combining correct.
func (c *Combiner) CombineLine(firstElem int, vals []float64) {
	for i, v := range vals {
		if idx := firstElem + i; idx >= 0 && idx < len(c.mem) {
			c.mem[idx] = c.op.Apply(c.mem[idx], v)
		}
	}
}

// Memory returns the combined memory image.
func (c *Combiner) Memory() []float64 { return c.mem }
