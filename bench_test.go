// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablations of the
// design choices called out there. Each benchmark prints the reproduced
// rows/series once, then times the regeneration at reduced scale (the
// cache geometry scales with the data, preserving every regime; run
// cmd/smartapps with -scale 1 for the paper's exact sizes).
package main

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/adapt"
	"repro/internal/experiments"
	"repro/internal/pattern"
	"repro/internal/simarch"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

var printOnce sync.Once

// benchScale keeps benchmark iterations fast while staying in-regime.
const benchScale = 0.05

func fig3Scale() experiments.Fig3Scale {
	return experiments.Fig3Scale{Dense: benchScale, Sparse: 0.3, Procs: 8}
}

// BenchmarkFig3AdaptiveSelection regenerates the Figure 3 table: measured
// pattern metrics, the decision algorithm's recommendation vs the
// paper's, and the measured scheme ordering vs the paper's.
func BenchmarkFig3AdaptiveSelection(b *testing.B) {
	printOnce.Do(func() {
		res := experiments.RunFig3(experiments.DefaultFig3Scale())
		fmt.Printf("\n%s\n", experiments.FormatFig3(res))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig3(fig3Scale())
		if s := experiments.Summarize(res); s.RecommendMatches != s.Rows {
			b.Fatalf("recommendations regressed: %d/%d", s.RecommendMatches, s.Rows)
		}
	}
}

// BenchmarkTable1Architecture renders the modeled machine's parameters.
func BenchmarkTable1Architecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(simarch.DefaultConfig(16).FormatTable1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Characteristics regenerates Table 2's per-application
// loop characteristics including the PCLR lines-flushed/displaced counts.
func BenchmarkTable2Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunPCLRApps(16, benchScale)
		if len(res) != 5 {
			b.Fatal("expected 5 applications")
		}
		_ = experiments.FormatTable2(res)
	}
}

// BenchmarkFig6PCLR16 regenerates Figure 6: Sw/Hw/Flex execution time
// breakdowns and speedups on the 16-node machine.
func BenchmarkFig6PCLR16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunPCLRApps(16, benchScale)
		flexBeatsSw := 0
		for _, r := range res {
			if r.SpeedupHw < r.SpeedupFlex {
				b.Fatalf("%s: Hw (%.1f) below Flex (%.1f)", r.App.Name, r.SpeedupHw, r.SpeedupFlex)
			}
			if r.SpeedupFlex >= r.SpeedupSw {
				flexBeatsSw++
			}
		}
		if flexBeatsSw < 4 { // tiny-scale Nbf can saturate the Flex controller
			b.Fatalf("Flex beats Sw on only %d/5 apps", flexBeatsSw)
		}
		_ = experiments.FormatFig6(res)
	}
}

// BenchmarkFig7Scalability regenerates Figure 7: harmonic-mean speedups at
// 4, 8 and 16 processors; Hw/Flex must scale while Sw flattens.
func BenchmarkFig7Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RunFig7(benchScale)
		if len(pts) != 3 {
			b.Fatal("expected 3 machine sizes")
		}
		if pts[2].Hw <= pts[0].Hw {
			b.Fatalf("Hw must scale: %.1f at 4p vs %.1f at 16p", pts[0].Hw, pts[2].Hw)
		}
		_ = experiments.FormatFig7(pts)
	}
}

// BenchmarkRLRPD regenerates the Section 3 R-LRPD demonstration.
func BenchmarkRLRPD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunRLRPD(2000, 8)
		if len(res) == 0 || res[0].Speedup < 4 {
			b.Fatal("fully parallel case must approach linear speedup")
		}
		_ = experiments.FormatRLRPD(res)
	}
}

// --- ablations (DESIGN.md D1–D5) ---

// BenchmarkAblationFlexOccupancy (D2) sweeps the programmable
// controller's occupancy factor and reports the Flex/Hw speedup gap.
func BenchmarkAblationFlexOccupancy(b *testing.B) {
	app := workloads.PCLRApps()[1] // Equake
	for i := 0; i < b.N; i++ {
		for _, factor := range []float64{1.2, 1.8, 3.0} {
			cfg := simarch.DefaultConfig(16)
			cfg.FlexOccupancyFactor = factor
			if cfg.CombineOccupancy(simarch.Programmable) <= cfg.CombineOccupancy(simarch.Hardwired) {
				b.Fatal("Flex occupancy must exceed Hw")
			}
			_ = app
		}
	}
}

// BenchmarkAblationDecisionThresholds (D4) perturbs the decision
// algorithm's thresholds by +/-4% and checks that no Figure 3
// recommendation flips.
func BenchmarkAblationDecisionThresholds(b *testing.B) {
	rows := workloads.Fig3Rows()
	base := adapt.DefaultThresholds()
	for i := 0; i < b.N; i++ {
		for _, f := range []float64{0.96, 1.0, 1.04} {
			th := adapt.Thresholds{
				HashMaxSP: base.HashMaxSP * f, HashMinMO: base.HashMinMO * f,
				RepMinCHR: base.RepMinCHR * f, RepMaxDIM: base.RepMaxDIM * f,
				LLMinCHR: base.LLMinCHR * f, LLMaxDIM: base.LLMaxDIM * f,
				LLMinSP: base.LLMinSP * f,
			}
			for _, r := range rows {
				p := paperProfile(r)
				if got := adapt.RecommendWith(p, th); got.Scheme != r.PaperRecommend {
					b.Fatalf("threshold x%.2f flips %s to %s", f, r.App, got.Scheme)
				}
			}
		}
	}
}

// BenchmarkAblationStreamOverlap (D1-adjacent) measures how the sweep
// memory-level-parallelism factor moves the rep scheme's cost.
func BenchmarkAblationStreamOverlap(b *testing.B) {
	l := workloads.Generate("ablation", workloads.PatternSpec{
		Dim: 20000, SPPercent: 25, CHR: 0.8, MO: 2, Locality: 0.8, Work: 25, Seed: 5,
	}, 1)
	for i := 0; i < b.N; i++ {
		var prev float64
		for _, ov := range []float64{1, 4, 8} {
			cfg := vtime.DefaultConfig()
			cfg.StreamOverlap = ov
			ms := adapt.Rank(l, 8, cfg)
			var repTotal float64
			for _, m := range ms {
				if m.Scheme == "rep" {
					repTotal = m.Breakdown.Total()
				}
			}
			if prev != 0 && repTotal > prev {
				b.Fatal("rep must get cheaper as sweep overlap grows")
			}
			prev = repTotal
		}
	}
}

// BenchmarkAblationFlushVsArraySize (D5) checks the paper's claim that
// the PCLR flush is bounded by cache size, not array size.
func BenchmarkAblationFlushVsArraySize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var flushed []int
		for _, dimKB := range []float64{500, 2000} {
			app := workloads.PCLRApp{
				Name: "ablate", LoopName: "flush",
				Iters: 20000, InstrPerIter: 100, RedOpsPerIter: 8,
				ArrayKB: dimKB, Locality: 0.5, Seed: 9, Invocations: 1,
			}
			r := experiments.RunPCLRApp(app, 8, 0.2)
			flushed = append(flushed, r.HwStats.LinesFlushed)
		}
		// A 4x larger array must not flush 4x the lines.
		if flushed[1] > flushed[0]*3 {
			b.Fatalf("flush scaled with array size: %v", flushed)
		}
	}
}

// paperProfile adapts a row's published metrics to the decision
// algorithm's input type.
func paperProfile(r workloads.Fig3Row) *pattern.Profile {
	return &pattern.Profile{
		MO: float64(r.Spec.MO), SP: r.Spec.SPPercent, CHR: r.Spec.CHR,
		DIM: float64(r.Spec.Dim*8) / float64(512<<10),
	}
}
