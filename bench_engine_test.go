// Engine throughput benchmarks: the pooled, decision-cached steady state
// of the concurrent reduction engine against the cold per-call path (full
// pattern inspection plus fresh privatization buffers on every job) the
// seed executed. Run them with
//
//	go test -bench Engine -benchmem -run '^$' .
//
// or `make bench`, which records the results in BENCH_engine.json.
package main

import (
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pattern"
	"repro/internal/reduction"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

// benchLoops is the mixed job stream both paths serve: the shared
// workloads.MixedSet, so benchmarks, engine tests and cmd/reduxserve all
// exercise the same regimes.
func benchLoops() []*trace.Loop {
	return workloads.MixedSet(0.5)
}

// BenchmarkEngineSteadyState measures the pooled path: decisions served
// from the signature cache, privatization buffers recycled, results
// written into a caller-reused destination.
func BenchmarkEngineSteadyState(b *testing.B) {
	loops := benchLoops()
	e, err := engine.New(engine.Config{Workers: 1, Platform: core.DefaultPlatform(8)})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	var dst []float64
	for _, l := range loops { // warm cache and pools
		res, err := e.Submit(l)
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Values
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.SubmitInto(loops[i%len(loops)], dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Values
	}
}

// BenchmarkEngineColdPerCall measures the seed's per-call path: every job
// re-runs sampled pattern inspection, re-decides, and executes via
// Scheme.Run with cold-allocated privatization buffers.
func BenchmarkEngineColdPerCall(b *testing.B) {
	loops := benchLoops()
	cfg := vtime.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := loops[i%len(loops)]
		prof := pattern.CharacterizeSampled(l, 8, cfg.L2Bytes, 8)
		rec := adapt.Recommend(prof)
		if out := adapt.SchemeFor(rec).Run(l, 8); len(out) != l.NumElems {
			b.Fatal("bad result length")
		}
	}
}

// BenchmarkEngineConcurrentThroughput measures the bounded worker pool
// under contention: 8 clients share 4 workers.
func BenchmarkEngineConcurrentThroughput(b *testing.B) {
	loops := benchLoops()
	e, err := engine.New(engine.Config{Workers: 4, Platform: core.DefaultPlatform(8)})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	for _, l := range loops {
		if _, err := e.Submit(l); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.SetParallelism(2) // 2 x GOMAXPROCS submitting goroutines
	b.RunParallel(func(pb *testing.PB) {
		var dst []float64
		i := 0
		for pb.Next() {
			res, err := e.SubmitInto(loops[i%len(loops)], dst)
			if err != nil {
				b.Fatal(err)
			}
			dst = res.Values
			i++
		}
	})
}

// BenchmarkEngineZipf32Clients measures the sharded engine under the
// Zipf-skewed hot-key stream with 32 concurrent clients — the production
// traffic shape where a few patterns dominate. "coalesced" is the batched
// path (same-pattern jobs queued together fuse into one execution);
// "perjob" disables fusion, which is PR 1's per-job execution path over
// the same sharded engine. The ratio of the two is what batch coalescing
// buys; both are recorded in BENCH_engine.json by make bench.
func BenchmarkEngineZipf32Clients(b *testing.B) {
	for _, mode := range []struct {
		name            string
		disableCoalesce bool
	}{
		{"coalesced", false},
		{"perjob", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			loops := workloads.HotKeySet(16, 0.5)
			stream := workloads.ZipfStream(loops, 4096, 1.4, 1)
			e, err := engine.New(engine.Config{
				Workers:         4,
				Platform:        core.DefaultPlatform(8),
				QueueDepth:      16,
				DisableCoalesce: mode.disableCoalesce,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			for _, l := range loops { // warm cache and pools
				if _, err := e.Submit(l); err != nil {
					b.Fatal(err)
				}
			}
			const clients = 32
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var dst []float64
					for {
						n := int(next.Add(1)) - 1
						if n >= b.N {
							return
						}
						res, err := e.SubmitInto(stream[n%len(stream)], dst)
						if err != nil {
							b.Error(err)
							return
						}
						dst = res.Values
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkGatewayZipf is BenchmarkRemoteZipf through the cluster tier:
// the same Zipf hot-key stream from 32 clients, but routed by a gateway
// across 2 reduxd backends instead of hitting one daemon directly. The
// "jobs/batch" metric is the aggregate batch-fusion occupancy across
// both engines — the acceptance bar is that it stays within 20% of the
// single-node BenchmarkRemoteZipf figure, proving pattern-affinity
// routing preserves coalescing while the tier scales out (round-robin
// routing would dilute every backend's queue with every pattern).
// ns/op adds the gateway's decode/intern/re-encode hop on top of
// RemoteZipf's stack.
func BenchmarkGatewayZipf(b *testing.B) {
	loops := workloads.HotKeySet(16, 0.5)
	stream := workloads.ZipfStream(loops, 4096, 1.4, 1)
	const backends = 2
	engines := make([]*engine.Engine, backends)
	addrs := make([]string, backends)
	for i := range engines {
		eng, err := engine.New(engine.Config{
			Workers:    4,
			Platform:   core.DefaultPlatform(8),
			QueueDepth: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		engines[i] = eng
		srv := server.New(eng, server.Config{MaxInflightGlobal: 4096})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		defer func() {
			if err := srv.Shutdown(10 * time.Second); err != nil {
				b.Error(err)
			}
			<-done
		}()
	}
	pool, err := cluster.New(cluster.Config{Backends: addrs, Conns: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	gw := server.NewWithDispatcher(pool, server.Config{MaxInflightGlobal: 4096})
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.Serve(gln) }()
	defer func() {
		if err := gw.Shutdown(10 * time.Second); err != nil {
			b.Error(err)
		}
		<-gwDone
	}()
	cl, err := client.Dial(gln.Addr().String(), client.Config{Conns: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	for _, l := range loops { // warm caches, pools and intern tables
		if _, err := cl.Submit(l); err != nil {
			b.Fatal(err)
		}
	}
	var warmJobs, warmBatches uint64
	for _, eng := range engines {
		s := eng.Stats()
		warmJobs += s.Jobs
		warmBatches += s.Batches
	}
	const clients = 32
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst []float64
			for {
				n := int(next.Add(1)) - 1
				if n >= b.N {
					return
				}
				res, err := cl.SubmitInto(stream[n%len(stream)], dst)
				if err != nil {
					b.Error(err)
					return
				}
				dst = res.Values
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	var jobs, batches uint64
	for _, eng := range engines {
		s := eng.Stats()
		jobs += s.Jobs
		batches += s.Batches
	}
	if batches > warmBatches {
		b.ReportMetric(float64(jobs-warmJobs)/float64(batches-warmBatches), "jobs/batch")
	}
}

// BenchmarkDriftRecovery measures how fast the recalibration subsystem
// returns a drifted workload to steady-state latency. The engine warms on
// the sparse phase of a drifting hot-key population (deciding hash for
// every key), then the measured loop serves only the dense-phase variants
// — same fingerprints, different regime — so every entry starts stale and
// must be re-profiled, re-inspected and switched to ll while traffic
// flows.
//
// The steady-state reference is measured on a separate control engine
// warmed directly on the dense phase (it decides ll natively, same
// engine shape, same recalibration knobs), so the target is independent
// of whether the measured engine ever recovers — a run that stays on
// the stale scheme reports its degraded p95 against an honest baseline
// and fails the gate, rather than grading itself against its own
// degraded tail.
//
// Custom metrics (recorded in BENCH_engine.json when b.N is large enough
// to measure them):
//
//   - recovery_jobs: jobs after the phase shift until a sliding window's
//     p95 latency first returns to within 25% of the steady state
//     (scripts/bench_compare.sh fails past RECOVERY_MAX_JOBS).
//   - recovery_p95_pct: that window's p95 as a percentage of steady-state
//     p95 (<= 125 when recovery happened inside the run;
//     scripts/bench_compare.sh fails past RECOVERY_MAX_PCT).
func BenchmarkDriftRecovery(b *testing.B) {
	const keys = 4
	ds := workloads.NewDriftStream(keys, 2, 1, 1.4, 0.5, 1)
	cfg := engine.Config{
		Workers:  1,
		Platform: core.DefaultPlatform(8),
		// Recover fast enough to watch within a benchtime run: re-profile
		// every 8 executions, default hysteresis of 2.
		RecalEvery: 8,
	}
	e, err := engine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	var dst []float64
	for i := 0; i < 4*engine.RecalSeedExecs; i++ { // decide + anchor every key on the sparse phase
		for _, l := range ds.Phases[0] {
			res, err := e.SubmitInto(l, dst)
			if err != nil {
				b.Fatal(err)
			}
			dst = res.Values
		}
	}
	stream := workloads.ZipfStream(ds.Phases[1], 4096, 1.4, 2)

	// Steady-state reference: the same dense traffic on the control
	// engine that never saw the sparse phase.
	const window = 64
	var steady time.Duration
	if b.N >= 8*window {
		control, err := engine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 4*engine.RecalSeedExecs; i++ {
			for _, l := range ds.Phases[1] {
				if _, err := control.Submit(l); err != nil {
					b.Fatal(err)
				}
			}
		}
		const controlJobs = 512
		ref := make([]time.Duration, 0, controlJobs)
		var cdst []float64
		for i := 0; i < controlJobs; i++ {
			t0 := time.Now()
			res, err := control.SubmitInto(stream[i%len(stream)], cdst)
			if err != nil {
				b.Fatal(err)
			}
			cdst = res.Values
			ref = append(ref, time.Since(t0))
		}
		control.Close()
		steady = latP95(ref)
	}

	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		res, err := e.SubmitInto(stream[i%len(stream)], dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Values
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()

	if b.N < 8*window || steady <= 0 {
		return // too short to measure a trajectory (bench-smoke runs 1x)
	}
	bar := steady + steady/4 // within 25% of steady state
	recovered := -1
	var recoveredP95 time.Duration
	for at := 0; at+window <= len(lat); at += window / 4 {
		if p := latP95(lat[at : at+window]); p <= bar {
			recovered, recoveredP95 = at, p
			break
		}
	}
	if recovered < 0 {
		// Never recovered inside the run: report the full post-shift p95
		// so the gate fails loudly instead of silently skipping.
		recovered, recoveredP95 = len(lat), latP95(lat)
	}
	b.ReportMetric(float64(recovered), "recovery-jobs")
	b.ReportMetric(100*float64(recoveredP95)/float64(steady), "recovery%")
	if s := e.Stats(); s.SchemeSwitches < keys {
		b.Fatalf("only %d of %d entries switched scheme during the run", s.SchemeSwitches, keys)
	}
}

// BenchmarkTenantIsolation measures noisy-neighbor containment under the
// weighted-fair scheduler: a background tenant runs a closed loop of
// heavier reductions while a hot tenant floods ten concurrent closed
// loops of cheap ones — 10x the background's offered load. The metric is
// the background tenant's p95 latency under that pressure as a percent
// of its solo baseline ("isolation%"); bench_compare.sh gates it at
// TENANT_ISOLATION_MAX_PCT (150 by default). Under a single shared FIFO
// the background job would queue behind the whole hot backlog; DRR
// bounds its wait to one round regardless of how deep the hot tenant's
// own FIFO runs.
func BenchmarkTenantIsolation(b *testing.B) {
	cfg := engine.Config{
		Workers:  2,
		Platform: core.DefaultPlatform(8),
		Tenants: []engine.TenantConfig{
			{Name: "hot", Weight: 1},
			{Name: "bg", Weight: 1},
		},
	}
	// Disjoint pattern populations (different scales shift every
	// dimension) so cross-tenant fusion cannot blur the measurement.
	hotLoops := workloads.MixedSet(0.1)
	bgLoops := workloads.MixedSet(0.6)

	warm := func(e *engine.Engine, loops []*trace.Loop, tenant int) {
		for _, l := range loops {
			h, err := e.SubmitAsyncIntoTenant(l, nil, tenant)
			if err != nil {
				b.Fatal(err)
			}
			h.Wait()
		}
	}
	const minN = 64

	// Solo baseline: the background tenant alone on an identical engine.
	var solo time.Duration
	if b.N >= minN {
		ctrl, err := engine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bgIdx := ctrl.TenantIndex("bg")
		warm(ctrl, bgLoops, bgIdx)
		const soloJobs = 256
		ref := make([]time.Duration, 0, soloJobs)
		var dst []float64
		for i := 0; i < soloJobs; i++ {
			t0 := time.Now()
			h, err := ctrl.SubmitAsyncIntoTenant(bgLoops[i%len(bgLoops)], dst, bgIdx)
			if err != nil {
				b.Fatal(err)
			}
			dst = h.Wait().Values
			ref = append(ref, time.Since(t0))
		}
		ctrl.Close()
		solo = latP95(ref)
	}

	e, err := engine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	hotIdx, bgIdx := e.TenantIndex("hot"), e.TenantIndex("bg")
	warm(e, hotLoops, hotIdx)
	warm(e, bgLoops, bgIdx)

	// Ten standing hot submitters against the background's single closed
	// loop: 10x offered load for the whole measured window.
	stop := make(chan struct{})
	var flood sync.WaitGroup
	var hotDone atomic.Uint64
	for k := 0; k < 10; k++ {
		flood.Add(1)
		go func(k int) {
			defer flood.Done()
			var dst []float64
			for i := k; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h, err := e.SubmitAsyncIntoTenant(hotLoops[i%len(hotLoops)], dst, hotIdx)
				if err != nil {
					return
				}
				dst = h.Wait().Values
				hotDone.Add(1)
			}
		}(k)
	}

	lat := make([]time.Duration, 0, b.N)
	var dst []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		h, err := e.SubmitAsyncIntoTenant(bgLoops[i%len(bgLoops)], dst, bgIdx)
		if err != nil {
			b.Fatal(err)
		}
		dst = h.Wait().Values
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	close(stop)
	flood.Wait()

	if b.N < minN || solo <= 0 {
		return // bench-smoke runs 1x: no stable percentile to report
	}
	if hotDone.Load() == 0 {
		b.Fatal("hot tenant made no progress — the flood never pressured the scheduler")
	}
	b.ReportMetric(100*float64(latP95(lat))/float64(solo), "isolation%")
}

// latP95 returns the 95th-percentile latency of the (unsorted) sample.
func latP95(sample []time.Duration) time.Duration {
	s := append([]time.Duration(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := (95*len(s) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// BenchmarkSchemeRunColdVsPooled isolates the buffer pool's effect on a
// single scheme execution, without the engine or decision layers.
func BenchmarkSchemeRunColdVsPooled(b *testing.B) {
	l := benchLoops()[0]
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reduction.Rep{}.Run(l, 8)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		ex := &reduction.Exec{Pool: reduction.NewBufferPool()}
		dst := reduction.Rep{}.RunInto(l, 8, ex, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = reduction.Rep{}.RunInto(l, 8, ex, dst)
		}
	})
}

// BenchmarkRemoteZipf is BenchmarkEngineZipf32Clients across the network:
// a reduxd server on loopback, a pooled client, and 32 concurrent
// submitters streaming the Zipf hot-key workload through the wire
// protocol. The "jobs/batch" metric is the measured batch-fusion
// occupancy — it must stay above 1, proving the decode → intern →
// SubmitAsync path preserves hot-key coalescing across the hop (the
// acceptance bar for the network subsystem). ns/op here includes
// encoding, loopback TCP, decoding and interning on top of execution.
func BenchmarkRemoteZipf(b *testing.B) {
	loops := workloads.HotKeySet(16, 0.5)
	stream := workloads.ZipfStream(loops, 4096, 1.4, 1)
	eng, err := engine.New(engine.Config{
		Workers:    4,
		Platform:   core.DefaultPlatform(8),
		QueueDepth: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(eng, server.Config{MaxInflightGlobal: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Shutdown(10 * time.Second); err != nil {
			b.Error(err)
		}
		<-serveDone
	}()
	cl, err := client.Dial(ln.Addr().String(), client.Config{Conns: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	for _, l := range loops { // warm cache, pools and intern table
		if _, err := cl.Submit(l); err != nil {
			b.Fatal(err)
		}
	}
	warm := eng.Stats()
	const clients = 32
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst []float64
			for {
				n := int(next.Add(1)) - 1
				if n >= b.N {
					return
				}
				res, err := cl.SubmitInto(stream[n%len(stream)], dst)
				if err != nil {
					b.Error(err)
					return
				}
				dst = res.Values
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	s := eng.Stats()
	if batches := s.Batches - warm.Batches; batches > 0 {
		b.ReportMetric(float64(s.Jobs-warm.Jobs)/float64(batches), "jobs/batch")
	}
}

// BenchmarkSimplifyOverlap measures an overlap batch of the shared-subrange
// workload served both ways: direct per-member execution (the rep kernel
// once per member — what each member costs without the simplification
// layer) against one simplified plan paying exactly what the engine's
// trySimplified pays per batch: the segment analysis sweep, each distinct
// segment's partial sum once, and the per-member combine column. The cache
// is cold on every iteration, so the measured win is pure shared-segment
// reuse within one batch; incremental warm-cache reuse only widens it.
// bench_compare.sh gates the per-job speedup at occupancy >= 4
// (SIMPLIFY_MIN_SPEEDUP, default 1.5x).
func BenchmarkSimplifyOverlap(b *testing.B) {
	const procs = 8
	pool := reduction.NewBufferPool()
	for _, occ := range []int{4, 8} {
		members := workloads.NewSharedSubrangeStream(occ, 0, 0.5, 21).Members
		l0 := members[0]
		segIters := reduction.DefaultSegIters(l0.NumIters(), procs)

		// The simplified path must agree with per-member direct execution
		// before its speed means anything. (Bit-for-bit equality against
		// the segment-association oracle is the reduction package's
		// property test; across associations only tolerance holds.)
		plan, err := reduction.BuildSegPlan(members, segIters)
		if err != nil {
			b.Fatal(err)
		}
		check := make([][]float64, len(members))
		for i := range check {
			check[i] = make([]float64, l0.NumElems)
		}
		plan.Run(procs, nil, nil, check)
		for m, l := range members {
			want := reduction.Rep{}.RunInto(l, 1, nil, nil)
			for e := range want {
				if d := math.Abs(check[m][e] - want[e]); d > 1e-9*math.Max(1, math.Abs(want[e])) {
					b.Fatalf("occ %d member %d element %d: simplified %g != direct %g", occ, m, e, check[m][e], want[e])
				}
			}
		}

		b.Run(fmt.Sprintf("direct-occ%d", occ), func(b *testing.B) {
			ex := &reduction.Exec{Pool: pool}
			dst := make([]float64, l0.NumElems)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, l := range members {
					reduction.Rep{}.RunInto(l, procs, ex, dst)
				}
			}
		})
		b.Run(fmt.Sprintf("simplified-occ%d", occ), func(b *testing.B) {
			ex := &reduction.Exec{Pool: pool}
			dsts := make([][]float64, len(members))
			for i := range dsts {
				dsts[i] = make([]float64, l0.NumElems)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := reduction.BuildSegPlanProcs(members, segIters, procs)
				if err != nil {
					b.Fatal(err)
				}
				p.Run(procs, ex, nil, dsts)
			}
		})
	}
}

// BenchmarkSessionDelta measures what the streaming-session path saves
// over the stateless alternative for the same access-pattern churn. Both
// sub-benchmarks serve the identical workloads.DeltaStream step sequence
// — a long-lived loop absorbing a small subscript update batch per step
// and needing the new reduction after each one:
//
//   - delta: one OPEN_SESSION, then Session.Apply per step — the engine
//     recomputes only the segments each batch touched and re-combines.
//   - resubmit: the pre-session protocol — every step re-submits the
//     whole mutated loop (pre-built mirrors, so trace construction is
//     off the clock and the measured cost is pure engine work; decisions
//     are warmed first, so the cache is as kind to this path as it can be).
//
// scripts/bench_compare.sh gates the ratio at SESSION_MIN_SPEEDUP
// (default 2x): if incremental re-reduction ever degenerates to full
// recompute cost, the session subsystem has lost its reason to exist.
func BenchmarkSessionDelta(b *testing.B) {
	const steps = 64
	ds := workloads.NewDeltaStream(steps, 4, 0.25, 11)
	// 32 segments balances touched-segment recompute against the
	// combine sweep for this stream's shape (4 scattered deltas, 128
	// refs per element).
	segIters := (ds.Base.NumIters() + 31) / 32
	cfg := engine.Config{Workers: 1, Platform: core.DefaultPlatform(8)}

	b.Run("delta", func(b *testing.B) {
		e, err := engine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		sess, res, err := e.OpenSession(ds.Base, segIters, nil)
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		dst := res.Values
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := sess.Apply(ds.Batches[i%steps], dst)
			if err != nil {
				b.Fatal(err)
			}
			dst = r.Values
		}
	})

	b.Run("resubmit", func(b *testing.B) {
		mirrors := make([]*trace.Loop, steps)
		for i := range mirrors {
			mirrors[i] = ds.MirrorAt(i + 1)
		}
		e, err := engine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		var dst []float64
		for _, m := range mirrors { // warm decisions and pools
			res, err := e.Submit(m)
			if err != nil {
				b.Fatal(err)
			}
			dst = res.Values
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.SubmitInto(mirrors[i%steps], dst)
			if err != nil {
				b.Fatal(err)
			}
			dst = res.Values
		}
	})
}
