// Engine throughput benchmarks: the pooled, decision-cached steady state
// of the concurrent reduction engine against the cold per-call path (full
// pattern inspection plus fresh privatization buffers on every job) the
// seed executed. Run them with
//
//	go test -bench Engine -benchmem -run '^$' .
//
// or `make bench`, which records the results in BENCH_engine.json.
package main

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pattern"
	"repro/internal/reduction"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/workloads"
)

// benchLoops is the mixed job stream both paths serve: the shared
// workloads.MixedSet, so benchmarks, engine tests and cmd/reduxserve all
// exercise the same regimes.
func benchLoops() []*trace.Loop {
	return workloads.MixedSet(0.5)
}

// BenchmarkEngineSteadyState measures the pooled path: decisions served
// from the signature cache, privatization buffers recycled, results
// written into a caller-reused destination.
func BenchmarkEngineSteadyState(b *testing.B) {
	loops := benchLoops()
	e, err := engine.New(engine.Config{Workers: 1, Platform: core.DefaultPlatform(8)})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	var dst []float64
	for _, l := range loops { // warm cache and pools
		res, err := e.Submit(l)
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Values
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.SubmitInto(loops[i%len(loops)], dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = res.Values
	}
}

// BenchmarkEngineColdPerCall measures the seed's per-call path: every job
// re-runs sampled pattern inspection, re-decides, and executes via
// Scheme.Run with cold-allocated privatization buffers.
func BenchmarkEngineColdPerCall(b *testing.B) {
	loops := benchLoops()
	cfg := vtime.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := loops[i%len(loops)]
		prof := pattern.CharacterizeSampled(l, 8, cfg.L2Bytes, 8)
		rec := adapt.Recommend(prof)
		if out := adapt.SchemeFor(rec).Run(l, 8); len(out) != l.NumElems {
			b.Fatal("bad result length")
		}
	}
}

// BenchmarkEngineConcurrentThroughput measures the bounded worker pool
// under contention: 8 clients share 4 workers.
func BenchmarkEngineConcurrentThroughput(b *testing.B) {
	loops := benchLoops()
	e, err := engine.New(engine.Config{Workers: 4, Platform: core.DefaultPlatform(8)})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	for _, l := range loops {
		if _, err := e.Submit(l); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.SetParallelism(2) // 2 x GOMAXPROCS submitting goroutines
	b.RunParallel(func(pb *testing.PB) {
		var dst []float64
		i := 0
		for pb.Next() {
			res, err := e.SubmitInto(loops[i%len(loops)], dst)
			if err != nil {
				b.Fatal(err)
			}
			dst = res.Values
			i++
		}
	})
}

// BenchmarkEngineZipf32Clients measures the sharded engine under the
// Zipf-skewed hot-key stream with 32 concurrent clients — the production
// traffic shape where a few patterns dominate. "coalesced" is the batched
// path (same-pattern jobs queued together fuse into one execution);
// "perjob" disables fusion, which is PR 1's per-job execution path over
// the same sharded engine. The ratio of the two is what batch coalescing
// buys; both are recorded in BENCH_engine.json by make bench.
func BenchmarkEngineZipf32Clients(b *testing.B) {
	for _, mode := range []struct {
		name            string
		disableCoalesce bool
	}{
		{"coalesced", false},
		{"perjob", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			loops := workloads.HotKeySet(16, 0.5)
			stream := workloads.ZipfStream(loops, 4096, 1.4, 1)
			e, err := engine.New(engine.Config{
				Workers:         4,
				Platform:        core.DefaultPlatform(8),
				QueueDepth:      16,
				DisableCoalesce: mode.disableCoalesce,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			for _, l := range loops { // warm cache and pools
				if _, err := e.Submit(l); err != nil {
					b.Fatal(err)
				}
			}
			const clients = 32
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var dst []float64
					for {
						n := int(next.Add(1)) - 1
						if n >= b.N {
							return
						}
						res, err := e.SubmitInto(stream[n%len(stream)], dst)
						if err != nil {
							b.Error(err)
							return
						}
						dst = res.Values
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkGatewayZipf is BenchmarkRemoteZipf through the cluster tier:
// the same Zipf hot-key stream from 32 clients, but routed by a gateway
// across 2 reduxd backends instead of hitting one daemon directly. The
// "jobs/batch" metric is the aggregate batch-fusion occupancy across
// both engines — the acceptance bar is that it stays within 20% of the
// single-node BenchmarkRemoteZipf figure, proving pattern-affinity
// routing preserves coalescing while the tier scales out (round-robin
// routing would dilute every backend's queue with every pattern).
// ns/op adds the gateway's decode/intern/re-encode hop on top of
// RemoteZipf's stack.
func BenchmarkGatewayZipf(b *testing.B) {
	loops := workloads.HotKeySet(16, 0.5)
	stream := workloads.ZipfStream(loops, 4096, 1.4, 1)
	const backends = 2
	engines := make([]*engine.Engine, backends)
	addrs := make([]string, backends)
	for i := range engines {
		eng, err := engine.New(engine.Config{
			Workers:    4,
			Platform:   core.DefaultPlatform(8),
			QueueDepth: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		engines[i] = eng
		srv := server.New(eng, server.Config{MaxInflightGlobal: 4096})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		defer func() {
			if err := srv.Shutdown(10 * time.Second); err != nil {
				b.Error(err)
			}
			<-done
		}()
	}
	pool, err := cluster.New(cluster.Config{Backends: addrs, Conns: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	gw := server.NewWithDispatcher(pool, server.Config{MaxInflightGlobal: 4096})
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.Serve(gln) }()
	defer func() {
		if err := gw.Shutdown(10 * time.Second); err != nil {
			b.Error(err)
		}
		<-gwDone
	}()
	cl, err := client.Dial(gln.Addr().String(), client.Config{Conns: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	for _, l := range loops { // warm caches, pools and intern tables
		if _, err := cl.Submit(l); err != nil {
			b.Fatal(err)
		}
	}
	var warmJobs, warmBatches uint64
	for _, eng := range engines {
		s := eng.Stats()
		warmJobs += s.Jobs
		warmBatches += s.Batches
	}
	const clients = 32
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst []float64
			for {
				n := int(next.Add(1)) - 1
				if n >= b.N {
					return
				}
				res, err := cl.SubmitInto(stream[n%len(stream)], dst)
				if err != nil {
					b.Error(err)
					return
				}
				dst = res.Values
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	var jobs, batches uint64
	for _, eng := range engines {
		s := eng.Stats()
		jobs += s.Jobs
		batches += s.Batches
	}
	if batches > warmBatches {
		b.ReportMetric(float64(jobs-warmJobs)/float64(batches-warmBatches), "jobs/batch")
	}
}

// BenchmarkSchemeRunColdVsPooled isolates the buffer pool's effect on a
// single scheme execution, without the engine or decision layers.
func BenchmarkSchemeRunColdVsPooled(b *testing.B) {
	l := benchLoops()[0]
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reduction.Rep{}.Run(l, 8)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		ex := &reduction.Exec{Pool: reduction.NewBufferPool()}
		dst := reduction.Rep{}.RunInto(l, 8, ex, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = reduction.Rep{}.RunInto(l, 8, ex, dst)
		}
	})
}

// BenchmarkRemoteZipf is BenchmarkEngineZipf32Clients across the network:
// a reduxd server on loopback, a pooled client, and 32 concurrent
// submitters streaming the Zipf hot-key workload through the wire
// protocol. The "jobs/batch" metric is the measured batch-fusion
// occupancy — it must stay above 1, proving the decode → intern →
// SubmitAsync path preserves hot-key coalescing across the hop (the
// acceptance bar for the network subsystem). ns/op here includes
// encoding, loopback TCP, decoding and interning on top of execution.
func BenchmarkRemoteZipf(b *testing.B) {
	loops := workloads.HotKeySet(16, 0.5)
	stream := workloads.ZipfStream(loops, 4096, 1.4, 1)
	eng, err := engine.New(engine.Config{
		Workers:    4,
		Platform:   core.DefaultPlatform(8),
		QueueDepth: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(eng, server.Config{MaxInflightGlobal: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Shutdown(10 * time.Second); err != nil {
			b.Error(err)
		}
		<-serveDone
	}()
	cl, err := client.Dial(ln.Addr().String(), client.Config{Conns: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	for _, l := range loops { // warm cache, pools and intern table
		if _, err := cl.Submit(l); err != nil {
			b.Fatal(err)
		}
	}
	warm := eng.Stats()
	const clients = 32
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst []float64
			for {
				n := int(next.Add(1)) - 1
				if n >= b.N {
					return
				}
				res, err := cl.SubmitInto(stream[n%len(stream)], dst)
				if err != nil {
					b.Error(err)
					return
				}
				dst = res.Values
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	s := eng.Stats()
	if batches := s.Batches - warm.Batches; batches > 0 {
		b.ReportMetric(float64(s.Jobs-warm.Jobs)/float64(batches), "jobs/batch")
	}
}
