// Speculative parallelization of a partially parallel loop with the
// Recursive LRPD test (Section 3): plain speculation fails outright, but
// R-LRPD commits the correct prefix each pass and re-executes only the
// remainder, extracting the available parallelism.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/spec"
)

func main() {
	const iters = 3000
	rng := rand.New(rand.NewSource(9))
	l := spec.NewLoop(iters + 1)
	for i := 0; i < iters; i++ {
		accs := []spec.Access{
			{Elem: int32(i), Kind: spec.Read},
			{Elem: int32(i), Kind: spec.Write},
		}
		if i > 0 && rng.Float64() < 0.03 { // 3% of iterations depend on a recent one
			back := 1 + rng.Intn(8)
			accs = append(accs, spec.Access{Elem: int32(i - back), Kind: spec.Read})
		}
		l.AddIter(accs...)
	}

	init := make([]float64, l.NumElems)
	if res := l.LRPD(init, 8); !res.Passed {
		fmt.Printf("plain LRPD: dependence detected at iteration %d -> loop is not DOALL\n", res.FirstDependence)
	}
	got, st := l.RLRPD(init, 8)
	want := l.RunSequential(init)
	for i := range want {
		if d := got[i] - want[i]; d > 1e-9 || d < -1e-9 {
			panic("R-LRPD result mismatch")
		}
	}
	fmt.Printf("R-LRPD: %d passes, %.2fx iteration replication, estimated speedup %.1f on 8 processors\n",
		st.Passes, float64(st.IterationsExecuted)/iters, st.SpeedupEstimate(iters, 8))
	fmt.Println("result verified against sequential execution")
}
