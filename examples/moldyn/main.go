// A molecular-dynamics force loop (Moldyn's ComputeForces) run across
// simulated timesteps. The pairlist degrades as particles move; the
// SmartApps runtime detects the pattern change and re-selects the
// reduction algorithm mid-run — Section 4's adaptive algorithm selection.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	rt := core.NewRuntime(core.DefaultPlatform(8))

	// Early timesteps: freshly built pairlist, dense and local.
	early := workloads.PatternSpec{
		Dim: 16384, SPPercent: 24, CHR: 0.41, MO: 2,
		Locality: 0.8, Skew: 0.5, Work: 40, Invocations: 10, Seed: 1,
	}
	// Late timesteps: particles drifted, references sparse and scattered.
	late := workloads.PatternSpec{
		Dim: 87808, SPPercent: 0.4, CHR: 0.29, MO: 2,
		Locality: 0.4, Skew: 1.3, Work: 40, Invocations: 10, Seed: 2,
	}

	for step := 0; step < 6; step++ {
		spec := early
		phase := "early"
		if step >= 3 {
			spec = late
			phase = "late"
		}
		spec.Seed += int64(step)
		loop := workloads.Generate("moldyn/ComputeForces", spec, 0.25)
		out := rt.Execute(loop)
		fmt.Printf("timestep %d (%s pairlist): scheme=%s action=%v\n",
			step, phase, out.Decision.Scheme, out.Decision.Action)
	}
	fmt.Println("the runtime switched algorithms when the pairlist degraded")
}
