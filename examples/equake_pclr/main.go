// Equake's smvp reduction loop on the simulated 16-node CC-NUMA machine:
// software-only replicated arrays (Sw) versus PCLR with hardwired (Hw)
// and programmable (Flex) directory controllers — the paper's Figure 6
// experiment for one application.
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/simarch"
	"repro/internal/workloads"
)

func main() {
	app := workloads.PCLRApps()[1] // Equake
	loop := app.Generate(0.2)
	cfg := simarch.DefaultConfig(16)
	cfg.L1Bytes = cfg.L1Bytes / 5
	cfg.L2Bytes = cfg.L2Bytes / 5 // caches scale with the data

	seq := machine.RunSequential(cfg, loop)
	sw := machine.New(cfg).RunSw(loop)
	hw, err := machine.New(cfg).RunPCLR(loop, simarch.Hardwired)
	if err != nil {
		panic(err)
	}
	flex, err := machine.New(cfg).RunPCLR(loop, simarch.Programmable)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%s/%s on 16 nodes (scale 0.2)\n", app.Name, app.LoopName)
	fmt.Printf("sequential: %.0f cycles\n", seq.Breakdown.Total())
	fmt.Printf("Sw:   %v  speedup %.1f (paper %.1f)\n", sw.Breakdown, seq.Breakdown.Total()/sw.Breakdown.Total(), app.PaperSpeedupSw)
	fmt.Printf("Hw:   %v  speedup %.1f (paper %.1f)\n", hw.Breakdown, seq.Breakdown.Total()/hw.Breakdown.Total(), app.PaperSpeedupHw)
	fmt.Printf("Flex: %v  speedup %.1f (paper %.1f)\n", flex.Breakdown, seq.Breakdown.Total()/flex.Breakdown.Total(), app.PaperSpeedupFlex)
	fmt.Printf("PCLR lines displaced: %d, flushed: %d\n", hw.Stats.LinesDisplaced, hw.Stats.LinesFlushed)
}
