// Quickstart: hand a reduction loop to the SmartApps runtime and let it
// characterize the access pattern, pick the best parallel reduction
// algorithm from the multi-version library, execute it and report what it
// decided.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	// An irregular histogram-style reduction: 50k elements, moderately
	// contended, mesh-like locality.
	loop := workloads.Generate("quickstart", workloads.PatternSpec{
		Dim: 50000, SPPercent: 20, CHR: 0.6, MO: 2,
		Locality: 0.85, Skew: 0.5, Work: 30, Invocations: 50, Seed: 7,
	}, 1)

	rt := core.NewRuntime(core.DefaultPlatform(8))
	out := rt.Execute(loop)

	fmt.Printf("loop %q: %d iterations, %d reduction references\n",
		loop.Name, loop.NumIters(), loop.TotalRefs())
	fmt.Printf("selected implementation: %s (%s)\n", out.Decision.Scheme, out.Decision.Why)
	fmt.Printf("action: %v\n", out.Decision.Action)
	sum := 0.0
	for _, v := range out.Result {
		sum += v
	}
	fmt.Printf("reduction checksum: %.6f\n", sum)
}
